#!/usr/bin/env bash
# Repo verification gate: build, test, lint.
#
#   scripts/verify.sh            # full gate
#   scripts/verify.sh --no-clippy  # skip the lint pass (e.g. older toolchains)
#   scripts/verify.sh --no-bench   # skip the columnar microbench smoke run
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
run_bench=1
for arg in "$@"; do
    case "$arg" in
        --no-clippy) run_clippy=0 ;;
        --no-bench) run_bench=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$run_clippy" -eq 1 ]; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace -- -D warnings
    # The serving layer is lint-gated on its own: concurrency code is
    # where a stray clippy allowance hides real bugs. This lane covers
    # the network front end too (infera_serve::net — wire protocol,
    # connection core, server, client, load harness).
    echo "==> cargo clippy -p infera-serve -- -D warnings"
    cargo clippy -p infera-serve -- -D warnings
    # Same for the observability crate: the bus/metrics hot paths run
    # inside every span close, so sloppy code here taxes everything.
    echo "==> cargo clippy -p infera-obs -- -D warnings"
    cargo clippy -p infera-obs -- -D warnings
    # And the fault-injection crate: its check() sits on every storage
    # and serve hot path, so it must stay dependency-free and clean.
    echo "==> cargo clippy -p infera-faults -- -D warnings"
    cargo clippy -p infera-faults -- -D warnings
    # And the sharding crate: the scatter-gather path promises
    # bit-identity with serial execution, so its code stays spotless.
    echo "==> cargo clippy -p infera-shard -- -D warnings"
    cargo clippy -p infera-shard -- -D warnings
fi

echo "==> golden-file tests (JSONL trace schema + Prometheus exposition)"
# Pinned byte-for-byte: external consumers parse these formats, so any
# drift must be a conscious, reviewed change to the golden strings.
cargo test -q -p infera-obs --test golden

if [ "$run_bench" -eq 1 ]; then
    echo "==> microbench --smoke (with throughput regression gate)"
    smoke_out="$(mktemp -t bench_columnar_smoke.XXXXXX.json)"
    trap 'rm -f "$smoke_out"' EXIT
    # --baseline makes the run itself fail if join/group-by throughput
    # drops more than 25% below the checked-in smoke baseline.
    cargo run --release -p infera-bench --bin microbench -- --smoke \
        --baseline BENCH_columnar_smoke.json --out "$smoke_out"
    # The smoke report must parse and carry a v1 + v2 entry for every op.
    python3 - "$smoke_out" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
ops = {
    "ingest",
    "filtered_scan",
    "group_by",
    "join",
    "multi_join",
    "group_by_str",
    "filter_group_str",
    "join_str",
}
have = {(e["op"], e["format"]) for e in report["entries"]}
missing = {(op, fmt) for op in ops for fmt in ("v1", "v2")} - have
assert not missing, f"BENCH_columnar.json missing entries: {sorted(missing)}"
assert all(e["bytes_on_disk"] > 0 and e["wall_ms"] > 0 for e in report["entries"])
s = report["summary"]
assert s["disk_reduction_filtered_scan"] > 1.0, s
print(
    "smoke bench ok: %.2fx disk reduction, worst time ratio %.3f on %s"
    % (s["disk_reduction_filtered_scan"], s["worst_time_ratio"], s["worst_time_ratio_op"])
)
EOF

    echo "==> bench-serve --smoke (concurrent-vs-serial digest gate)"
    serve_out="$(mktemp -t bench_serve_smoke.XXXXXX.json)"
    # bench-serve exits non-zero if any concurrent run's report digest
    # diverges from the serial baseline — determinism under concurrency
    # is part of the gate, not just throughput.
    cargo run --release --bin infera -- bench-serve --smoke --out "$serve_out" \
        --work "$(mktemp -d -t bench_serve_work.XXXXXX)"
    rm -f "$serve_out"

    echo "==> bench-serve --smoke under fault injection (chaos gate)"
    chaos_out="$(mktemp -t bench_serve_chaos.XXXXXX.json)"
    # Deterministic chaos smoke: one-shot serve-boundary, storage-read,
    # and LLM-call faults plus a worker panic, injected into every
    # configuration after the serial baseline. The same digest gate
    # applies — runs that retried to success must reproduce the clean
    # baseline bit-for-bit.
    cargo run --release --bin infera -- bench-serve --smoke --out "$chaos_out" \
        --faults 'seed=9;serve.job=nth1;storage.read=nth3;llm.call=nth5;serve.worker=nth1:panic' \
        --work "$(mktemp -d -t bench_serve_chaos_work.XXXXXX)"
    python3 - "$chaos_out" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["digests_match"], report.get("divergent_questions")
assert report["fault_spec"], "chaos run must record its fault spec"
injected = sum(r.get("faults_injected", 0) for r in report["rows"])
assert injected >= 1, "the fault plan never fired"
print("chaos smoke ok: %d faults injected, digests reproduced" % injected)
EOF
    rm -f "$chaos_out"

    echo "==> bench-load --smoke (network saturation + drain + digest gate)"
    load_out="$(mktemp -t bench_load_smoke.XXXXXX.json)"
    # bench-load exits non-zero if sampled network digests diverge from
    # the fresh serial baseline, if the graceful drain loses an accepted
    # job, or if a draining server fails to refuse a new connection with
    # the typed goodbye.
    cargo run --release --bin infera -- bench-load --smoke --out "$load_out" \
        --work "$(mktemp -d -t bench_load_work.XXXXXX)"
    python3 - "$load_out" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["protocol_version"] >= 1, report
assert report["digests_match"], "network digests diverged from serial"
assert len(report["levels"]) >= 2, "smoke sweeps at least two offered loads"
level_keys = {
    "multiplier", "offered_qps", "duration_ms", "submitted", "accepted",
    "rejected", "rejection_rate", "completed", "failed", "p50_ms",
    "p95_ms", "p99_ms", "achieved_qps", "events_streamed",
    "digests_checked", "digests_match",
}
for level in report["levels"]:
    missing = level_keys - set(level)
    assert not missing, f"BENCH_load level missing keys: {sorted(missing)}"
    assert level["accepted"] == level["completed"] + level["failed"], level
    assert level["digests_checked"] >= 1 and level["digests_match"], level
assert any(l["events_streamed"] > 0 for l in report["levels"]), "no events streamed"
sd = report["shutdown"]
assert sd["lost"] == 0, sd
assert sd["new_conn_rejected"], sd
print(
    "load smoke ok: %d levels, top-rung rejection %.1f%%, drain lost 0 of %d"
    % (
        len(report["levels"]),
        report["levels"][-1]["rejection_rate"] * 100.0,
        sd["accepted"],
    )
)
EOF
    rm -f "$load_out"

    echo "==> bench-shard --smoke (sharded-vs-serial digest gate)"
    shard_out="$(mktemp -t bench_shard_smoke.XXXXXX.json)"
    # bench-shard asserts every shard count's digests match the serial
    # anchor (including a faulted pass that must retry to the same
    # digests) and exits non-zero otherwise; smoke mode skips the
    # wall-clock speedup gate, which only means something at full scale.
    cargo run --release -p infera-bench --bin bench_shard -- --smoke \
        --out "$shard_out"
    python3 - "$shard_out" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert all(p["digests_match"] for p in report["scaling"]), report
assert {p["shards"] for p in report["scaling"]} == {1, 2, 4, 8}
fp = report["fault_pass"]
assert fp["digests_match"] and fp["retries_consumed"] >= 1, fp
print(
    "shard smoke ok: digests identical across %d layouts, %d fault retries reproduced them"
    % (len(report["scaling"]), fp["retries_consumed"])
)
EOF
    rm -f "$shard_out"
fi

echo "verify: OK"
