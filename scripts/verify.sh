#!/usr/bin/env bash
# Repo verification gate: build, test, lint.
#
#   scripts/verify.sh            # full gate
#   scripts/verify.sh --no-clippy  # skip the lint pass (e.g. older toolchains)
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
for arg in "$@"; do
    case "$arg" in
        --no-clippy) run_clippy=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$run_clippy" -eq 1 ]; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace -- -D warnings
fi

echo "verify: OK"
