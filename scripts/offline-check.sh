#!/usr/bin/env bash
# Offline build/test harness: compiles the workspace with plain rustc
# against stub rlibs (tools/offline/stubs) so development can proceed on
# machines with no crates.io access. This is NOT the verification gate —
# scripts/verify.sh (cargo) remains authoritative where the registry is
# reachable.
#
#   scripts/offline-check.sh              # build everything, run all tests
#   scripts/offline-check.sh --no-run     # compile only
#   OFFLINE_ALLOW_TEST_FAIL=1 scripts/offline-check.sh   # don't exit 1 on test failures
#
# Stub semantics (see tools/offline/stubs/*.rs): rayon is sequential,
# parking_lot wraps std::sync, crossbeam::channel wraps mpsc, serde(+json)
# is a real mini implementation, rand/rand_chacha/proptest are
# deterministic xoshiro-based stand-ins. Tests that depend on the exact
# ChaCha stream may behave differently than under real deps.
set -uo pipefail
cd "$(dirname "$0")/.."

RUN_TESTS=1
for arg in "${@:-}"; do
    case "$arg" in
        --no-run) RUN_TESTS=0 ;;
        "") ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

STUBS=tools/offline/stubs
OUT=target/offline
DEPS=$OUT/deps
mkdir -p "$DEPS"

RUSTC="rustc --edition 2021 -C opt-level=1 -C debuginfo=0"

fail() { echo "offline-check: FAILED: $*" >&2; exit 1; }

newer_than() { # newer_than <output> <inputs...>  -> 0 if output up to date
    local out=$1 input; shift
    [ -f "$out" ] || return 1
    for input in "$@"; do
        [ "$input" -nt "$out" ] && return 1
    done
    return 0
}

# ---------------------------------------------------------------- stubs

build_stub() { # build_stub <name> [externs...]
    local name=$1; shift
    local out="$DEPS/lib${name}.rlib"
    local externs=() dep_files=()
    for dep in "$@"; do
        if [ "$dep" = "serde_derive" ]; then
            externs+=(--extern "serde_derive=$DEPS/libserde_derive.so")
            dep_files+=("$DEPS/libserde_derive.so")
        else
            externs+=(--extern "$dep=$DEPS/lib${dep}.rlib")
            dep_files+=("$DEPS/lib${dep}.rlib")
        fi
    done
    if newer_than "$out" "$STUBS/${name}.rs" ${dep_files[@]+"${dep_files[@]}"}; then return 0; fi
    echo "==> stub $name"
    $RUSTC --crate-type rlib --crate-name "$name" "$STUBS/${name}.rs" \
        -o "$out" ${externs[@]+"${externs[@]}"} -L "$DEPS" -Awarnings || fail "stub $name"
}

if ! newer_than "$DEPS/libserde_derive.so" "$STUBS/serde_derive.rs"; then
    echo "==> stub serde_derive (proc-macro)"
    $RUSTC --crate-type proc-macro --crate-name serde_derive \
        "$STUBS/serde_derive.rs" -o "$DEPS/libserde_derive.so" -Awarnings \
        || fail "stub serde_derive"
fi
build_stub serde serde_derive
build_stub serde_json serde
build_stub rand
build_stub rand_chacha rand
build_stub rayon
build_stub parking_lot
build_stub crossbeam
build_stub bytes
build_stub proptest

STUB_EXTERNS=(
    --extern "serde=$DEPS/libserde.rlib"
    --extern "serde_json=$DEPS/libserde_json.rlib"
    --extern "rand=$DEPS/librand.rlib"
    --extern "rand_chacha=$DEPS/librand_chacha.rlib"
    --extern "rayon=$DEPS/librayon.rlib"
    --extern "parking_lot=$DEPS/libparking_lot.rlib"
    --extern "crossbeam=$DEPS/libcrossbeam.rlib"
    --extern "bytes=$DEPS/libbytes.rlib"
    --extern "proptest=$DEPS/libproptest.rlib"
)

# ------------------------------------------------------------ workspace

# Topological order of the workspace crates.
CRATES=(faults obs frame rag hacc llm provenance viz columnar shard sandbox agents core serve bench)

crate_externs() { # echo --extern flags for every already-built workspace lib
    local flags=()
    for c in "${CRATES[@]}"; do
        local lib="$DEPS/libinfera_${c}.rlib"
        [ -f "$lib" ] && flags+=(--extern "infera_${c}=$lib")
    done
    [ -f "$DEPS/libinfera.rlib" ] && flags+=(--extern "infera=$DEPS/libinfera.rlib")
    if [ "${#flags[@]}" -gt 0 ]; then printf '%s\n' "${flags[@]}"; fi
}

srcs_of() { find "$1" -name '*.rs' 2>/dev/null; }

built_libs() { ls "$DEPS"/libserde.rlib "$DEPS"/lib{serde_json,rand,rand_chacha,rayon,parking_lot,crossbeam,bytes,proptest}.rlib "$DEPS"/libinfera*.rlib 2>/dev/null || true; }

TEST_BINS=()
FAILED_TESTS=()

build_lib() { # build_lib <crate_name> <src> <out_name>
    local name=$1 src=$2 out="$DEPS/lib$3.rlib"
    local -a wext
    mapfile -t wext < <(crate_externs)
    if ! newer_than "$out" $(srcs_of "$(dirname "$src")") $(built_libs); then
        echo "==> lib $name"
        CARGO_MANIFEST_DIR="$(cd "$(dirname "$src")/.." && pwd)" \
        $RUSTC --crate-type rlib --crate-name "$name" "$src" -o "$out" \
            "${STUB_EXTERNS[@]}" ${wext[@]+"${wext[@]}"} -L "$DEPS" \
            || fail "lib $name"
    fi
}

build_test() { # build_test <crate_name> <src> <bin_out>
    local name=$1 src=$2 out=$3
    local -a wext
    mapfile -t wext < <(crate_externs)
    if ! newer_than "$out" $(srcs_of "$(dirname "$src")") $(built_libs); then
        echo "==> test $name"
        CARGO_MANIFEST_DIR="$(cd "$(dirname "$src")/.." && pwd)" \
        $RUSTC --test --crate-name "$name" "$src" -o "$out" \
            "${STUB_EXTERNS[@]}" ${wext[@]+"${wext[@]}"} -L "$DEPS" \
            || fail "test build $name"
    fi
    TEST_BINS+=("$out")
}

build_bin_check() { # compile a binary target (type-check + link, not run)
    local name=$1 src=$2 out=$3
    local -a wext
    mapfile -t wext < <(crate_externs)
    if ! newer_than "$out" "$src" $(built_libs); then
        echo "==> bin $name"
        CARGO_MANIFEST_DIR="$(cd "$(dirname "$src")/../.." && pwd)" \
        $RUSTC --crate-type bin --crate-name "$name" "$src" -o "$out" \
            "${STUB_EXTERNS[@]}" ${wext[@]+"${wext[@]}"} -L "$DEPS" \
            || fail "bin $name"
    fi
}

for c in "${CRATES[@]}"; do
    build_lib "infera_${c}" "crates/$c/src/lib.rs" "infera_${c}"
done
build_lib infera src/lib.rs infera

# Unit tests (lib compiled with --test).
for c in "${CRATES[@]}"; do
    build_test "infera_${c}" "crates/$c/src/lib.rs" "$OUT/unit_${c}"
done
build_test infera src/lib.rs "$OUT/unit_infera"

# Integration tests.
for t in crates/*/tests/*.rs tests/*.rs; do
    [ -f "$t" ] || continue
    tname=$(basename "$t" .rs)
    case "$t" in
        crates/*) cdir=$(basename "$(dirname "$(dirname "$t")")"); label="${cdir}_${tname}" ;;
        *) label="root_${tname}" ;;
    esac
    build_test "$tname" "$t" "$OUT/it_${label}"
done

# Binaries (compile check only).
for b in src/bin/*.rs crates/bench/src/bin/*.rs; do
    [ -f "$b" ] || continue
    bname=$(basename "$b" .rs)
    build_bin_check "$bname" "$b" "$OUT/bin_${bname}"
done

# ------------------------------------------------------------- run tests

if [ "$RUN_TESTS" -eq 1 ]; then
    for bin in "${TEST_BINS[@]}"; do
        echo "==> run $(basename "$bin")"
        if ! "$bin" --test-threads 4 -q; then
            FAILED_TESTS+=("$(basename "$bin")")
        fi
    done
    echo
    if [ "${#FAILED_TESTS[@]}" -gt 0 ]; then
        echo "offline-check: test failures in: ${FAILED_TESTS[*]}" >&2
        [ "${OFFLINE_ALLOW_TEST_FAIL:-0}" = "1" ] || exit 1
    else
        echo "offline-check: all tests passed"
    fi
fi
echo "offline-check: OK"
