//! The InferA command-line interface.
//!
//! ```text
//! infera generate --out ens --sims 4 --steps 16 --halos 2000 --particles 20000
//! infera plan     --ensemble ens "top 20 largest halos at timestep 498 in simulation 0"
//! infera ask      --ensemble ens --work work [--perfect] [--feedback] "<question>"
//! infera serve    --ensemble ens --work work --workers 4   # questions on stdin
//! infera serve    --ensemble ens --listen 127.0.0.1:7433   # network protocol peers
//! infera bench-serve [--smoke] [--out BENCH_serve.json]
//! infera bench-load  [--smoke] [--out BENCH_load.json]
//! infera questions
//! infera audit    --run work/run_0001
//! ```

use infera::prelude::*;
use infera::serve::net::{self, ConnOptions, LoadOpts, NetServer, NetServerConfig};
use infera::serve::{BenchOpts, Scheduler, ServeConfig};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Print to stdout, exiting quietly when the reader hangs up (`infera
/// questions | head` must not panic on the broken pipe).
macro_rules! out {
    ($($arg:tt)*) => {{
        let mut stdout = std::io::stdout().lock();
        if writeln!(stdout, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// CLI failure: either a usage problem or a typed InferA error, so exit
/// messages carry the stable error kind instead of a stringly chain.
enum CliError {
    Usage(String),
    Infera(InferaError),
}

impl From<InferaError> for CliError {
    fn from(e: InferaError) -> CliError {
        CliError::Infera(e)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Usage(msg.to_string())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Infera(e) => write!(f, "[{}] {}", e.kind().label(), e.message()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "plan" => cmd_plan(&args[1..]),
        "ask" => cmd_ask(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        "bench-load" => cmd_bench_load(&args[1..]),
        "sql" => cmd_sql(&args[1..]),
        "questions" => cmd_questions(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "--help" | "-h" | "help" => {
            out!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
InferA — a smart assistant for cosmological ensemble data (Rust reproduction)

USAGE:
  infera generate --out <dir> [--sims N] [--steps N] [--halos N] [--particles N] [--seed N]
      Generate a synthetic HACC ensemble.
  infera plan --ensemble <dir> [--save <file>] \"<question>\"
      Preview the analysis plan for a question (planning stage only);
      --save writes it as editable JSON.
  infera ask --ensemble <dir> [--work <dir>] [--seed N] [--perfect] [--feedback]
             [--plan <file>] [--timeout-secs N] [--breakdown] [--faults <spec>]
             \"<question>\"
      Run the full two-stage workflow. --perfect disables model error
      injection; --feedback simulates a human in the loop; --plan executes
      a user-edited plan saved by `plan --save`; --breakdown prints the
      per-stage cost profile derived from the run trace.
  infera serve --ensemble <dir> [--work <dir>] [--workers N] [--queue N]
               [--listen <addr>] [--seed N] [--perfect] [--timeout-secs N]
               [--stats-every N] [--events] [--faults <spec>]
      Serve questions concurrently over one shared session. Without
      --listen, line-delimited input on stdin: a bare question per line
      is submit sugar, full JSON protocol requests also work, and typed
      protocol response lines (Accepted/Rejected/Done/...) stream on
      stdout — a full queue answers `Rejected {queue_full}` instead of
      blocking. With --listen <addr>, a TCP front end speaks the same
      versioned line-delimited JSON protocol to persistent connections
      with per-job progress-event streaming; closing stdin begins a
      graceful drain (new connections refused with a typed Goodbye,
      accepted jobs run to completion). --stats-every N prints a
      one-line stats summary to stderr every N seconds; --events
      streams live job/span events to stderr as JSON lines. On exit the
      Prometheus exposition, metrics snapshot, and slow-query flight
      recorder are written under <work>/obs/.
      --faults (or the INFERA_FAULTS env var) activates deterministic
      fault injection, e.g. --faults 'seed=7;storage.read=p0.05' —
      transient failures are retried with backoff, corrupt chunks are
      quarantined, and repeated failures open a circuit breaker.
  infera stats --work <dir> [--prometheus] [--flight] [--json]
      Inspect the observability artifacts a serve session left under
      <work>/obs/: summary by default, --prometheus dumps the text
      exposition, --flight prints the slowest/failed jobs with their
      full span traces, --json dumps the metrics snapshot.
  infera bench-serve [--smoke] [--out <file>] [--ensemble <dir>] [--work <dir>]
                     [--sleep-scale X] [--seed N] [--faults <spec>]
      Benchmark the serving layer on the 20-question evaluation set at
      1/4/8 workers and write BENCH_serve.json. Fails if any concurrent
      run's report diverges from the serial baseline. --smoke is the
      fast CI gate (fewer questions, no model-latency sleeps). --faults
      injects faults into every configuration after the clean serial
      baseline — the digest gate then doubles as a chaos gate, proving
      retried runs reproduce the baseline bit-for-bit.
  infera bench-load [--smoke] [--out <file>] [--ensemble <dir>] [--work <dir>]
                    [--sleep-scale X] [--seed N]
      Saturation-test the network front end: a real TCP server on a
      loopback port under an open-loop arrival process at several
      offered loads around measured capacity, writing BENCH_load.json
      (p50/p99 latency, rejection rate, streamed-event counts per
      level). Fails unless sampled network digests match a fresh serial
      baseline bit-for-bit, a graceful drain loses zero accepted jobs,
      and a draining server refuses new connections with a typed
      Goodbye. --smoke is the fast CI gate.
  infera sql --db <dir> [--explain] \"<statement>\"
      Run a SQL statement against a columnar database directory (for
      example a session's db/ under its work directory). --explain
      prints the cost-based physical plan as an indented tree with
      per-node estimates and observed execution counters instead of
      the result rows.
  infera questions [--bare]
      List the 20-question evaluation set with difficulty labels;
      --bare prints only the text, one per line (pipe into `serve`).
  infera audit --run <dir>
      Print the provenance audit trail of a finished run directory.";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, CliError> {
    match flag_value(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad value for {name}: {v}"))),
        None => Ok(default),
    }
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Activate deterministic fault injection from `--faults <spec>` or the
/// `INFERA_FAULTS` env var (flag wins). Spec grammar:
/// `seed=N;site=trigger[:mode];...` — see `infera_faults`.
fn init_faults(args: &[String]) -> Result<(), CliError> {
    if let Some(spec) = flag_value(args, "--faults") {
        let plan = infera::faults::FaultPlan::parse(&spec)
            .map_err(|e| CliError::Usage(format!("bad --faults spec '{spec}': {e}")))?;
        infera::faults::install(plan);
        eprintln!("fault injection active: {spec}");
    } else {
        match infera::faults::init_from_env() {
            Ok(true) => eprintln!("fault injection active (INFERA_FAULTS)"),
            Ok(false) => {}
            Err(e) => return Err(CliError::Usage(format!("bad INFERA_FAULTS spec: {e}"))),
        }
    }
    Ok(())
}

/// Flags that take a value.
const VALUE_FLAGS: &[&str] = &[
    "--out", "--sims", "--steps", "--halos", "--particles", "--seed", "--ensemble", "--work",
    "--run", "--save", "--plan", "--workers", "--queue", "--timeout-secs", "--sleep-scale",
    "--stats-every", "--db", "--faults", "--shards", "--listen",
];
/// Boolean flags.
const BOOL_FLAGS: &[&str] = &[
    "--perfect", "--feedback", "--breakdown", "--smoke", "--bare", "--events", "--prometheus",
    "--flight", "--json", "--explain",
];

/// The trailing free argument (the question text). Unknown flags are an
/// error — silently treating them as value-taking would swallow the
/// question.
fn free_text(args: &[String]) -> Result<Option<String>, CliError> {
    let mut skip_next = false;
    let mut free = Vec::new();
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
            } else if !BOOL_FLAGS.contains(&a.as_str()) {
                return Err(CliError::Usage(format!("unknown flag '{a}'")));
            }
            continue;
        }
        free.push(a.clone());
    }
    Ok((!free.is_empty()).then(|| free.join(" ")))
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let out = flag_value(args, "--out").ok_or("generate requires --out <dir>")?;
    let sims: usize = flag_num(args, "--sims", 4)?;
    let steps: usize = flag_num(args, "--steps", 16)?;
    let halos: usize = flag_num(args, "--halos", 2000)?;
    let particles: usize = flag_num(args, "--particles", 20_000)?;
    let seed: u64 = flag_num(args, "--seed", 42)?;
    let spec = EnsembleSpec {
        n_sims: sims,
        steps: EnsembleSpec::evenly_spaced_steps(steps),
        sim: infera::hacc::SimConfig {
            n_halos: halos,
            particles_per_step: particles,
            ..Default::default()
        },
        seed,
        particle_block_rows: 16_384,
    };
    let manifest = infera::hacc::generate(&spec, PathBuf::from(&out).as_path())
        .map_err(InferaError::from)?;
    out!(
        "generated {} simulations x {} snapshots under {out} ({:.1} MB)",
        manifest.n_sims,
        manifest.steps.len(),
        manifest.total_bytes() as f64 / 1e6
    );
    Ok(())
}

/// Session configuration shared by ask/plan/serve.
fn config_from(args: &[String]) -> Result<SessionConfig, CliError> {
    let seed: u64 = flag_num(args, "--seed", 42)?;
    let mut config = SessionConfig::default().with_seed(seed);
    if has_flag(args, "--perfect") {
        config = config.with_profile(BehaviorProfile::perfect());
    }
    if has_flag(args, "--feedback") {
        let mut run_config = config.run_config;
        run_config.human_feedback = true;
        config = config.with_run_config(run_config);
    }
    let timeout_secs: u64 = flag_num(args, "--timeout-secs", 0)?;
    if timeout_secs > 0 {
        config = config.with_job_timeout(Duration::from_secs(timeout_secs));
    }
    let shards: usize = flag_num(args, "--shards", 0)?;
    if shards > 1 {
        config = config.with_shards(shards);
    }
    Ok(config)
}

fn session_from(args: &[String]) -> Result<InferA, CliError> {
    let ens = flag_value(args, "--ensemble").ok_or("missing --ensemble <dir>")?;
    let work = flag_value(args, "--work").unwrap_or_else(|| "infera-work".into());
    Ok(InferA::builder(&ens)
        .work_dir(&work)
        .config(config_from(args)?)
        .build()?)
}

fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let question = free_text(args)?.ok_or("plan requires a question")?;
    let session = session_from(args)?;
    let (intent, plan) = session.plan(&question)?;
    out!("## Extracted intent\n{intent:#?}\n");
    out!("## Proposed plan ({} analysis steps)\n{}", plan.n_analysis_steps(), plan.to_text());
    out!("rationale: {}", plan.rationale);
    if let Some(path) = flag_value(args, "--save") {
        let json = serde_json::to_string_pretty(&plan).map_err(InferaError::from)?;
        std::fs::write(&path, json).map_err(InferaError::from)?;
        out!("plan saved to {path} — edit it and run: infera ask --plan {path} ...");
    }
    Ok(())
}

fn cmd_ask(args: &[String]) -> Result<(), CliError> {
    init_faults(args)?;
    let question = free_text(args)?.ok_or("ask requires a question")?;
    let session = session_from(args)?;
    let report = match flag_value(args, "--plan") {
        Some(path) => {
            // The user-reviewed/edited plan (from `plan --save`).
            let json = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Usage(format!("read {path}: {e}")))?;
            let plan: infera::agents::Plan = serde_json::from_str(&json)
                .map_err(|e| CliError::Usage(format!("parse {path}: {e}")))?;
            session.ask_with_plan(&question, plan)?
        }
        None => session.ask(&question)?,
    };
    out!("{}", report.summary);
    if let Some(result) = &report.result {
        out!("## Result frame\n{}", result.to_display(12));
    }
    out!(
        "completed={} redos={} tokens={} storage={:.2} MB ({:.2} MB logical, {:.2}x compression) time={:.1}s (+{:.1}s simulated LLM latency)",
        report.completed,
        report.redos,
        report.tokens,
        report.storage_bytes as f64 / 1e6,
        report.storage_logical_bytes as f64 / 1e6,
        report.storage_logical_bytes as f64 / report.storage_bytes.max(1) as f64,
        report.wall_ms as f64 / 1000.0,
        report.llm_latency_ms as f64 / 1000.0
    );
    if has_flag(args, "--breakdown") {
        out!("\nper-stage cost breakdown:\n{}", report.breakdown_text());
        let kernels = report.kernel_breakdown_text();
        if !kernels.is_empty() {
            out!("execution kernels:\n{kernels}");
        }
        out!(
            "storage: {} B on disk, {} B logical ({:.2}x compression)",
            report.storage_bytes,
            report.storage_logical_bytes,
            report.storage_logical_bytes as f64 / report.storage_bytes.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    init_faults(args)?;
    let workers: usize = flag_num(args, "--workers", 4)?;
    let queue: usize = flag_num(args, "--queue", 64)?;
    let stats_every: u64 = flag_num(args, "--stats-every", 0)?;
    let stream_events = has_flag(args, "--events");
    let listen = flag_value(args, "--listen");
    let work = PathBuf::from(flag_value(args, "--work").unwrap_or_else(|| "infera-work".into()));
    let session = Arc::new(session_from(args)?);
    let sched = Arc::new(Scheduler::new(session, ServeConfig::with_pool(workers, queue)));

    // Live surfaces run on stderr so stdout stays a clean stream of
    // protocol response lines.
    let stop = Arc::new(AtomicBool::new(false));
    let mut side_threads = Vec::new();
    if stats_every > 0 {
        // Sleep in short steps so a long tick still exits promptly on
        // shutdown.
        let global = sched.global_metrics().clone();
        let bus = sched.bus().clone();
        let stop = stop.clone();
        side_threads.push(std::thread::spawn(move || {
            let tick = Duration::from_secs(stats_every);
            let step = Duration::from_millis(250);
            let mut since_tick = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(step);
                since_tick += step;
                if since_tick >= tick {
                    since_tick = Duration::ZERO;
                    infera::serve::telemetry::sync_bus_counters(&global, &bus);
                    infera::serve::telemetry::sync_fault_counters(&global);
                    eprintln!("[stats] {}", infera::serve::render_stats_line(&global, &bus));
                }
            }
        }));
    }
    if stream_events {
        // A generous buffer; a stalled stderr drops events (counted on
        // the bus) instead of stalling workers.
        let sub = sched.bus().subscribe(8192);
        let stop = stop.clone();
        side_threads.push(std::thread::spawn(move || loop {
            match sub.recv_timeout(Duration::from_millis(250)) {
                Some(ev) => {
                    if let Ok(json) = serde_json::to_string(&ev) {
                        eprintln!("[event] {json}");
                    }
                }
                None if stop.load(Ordering::Relaxed) => break,
                None => {}
            }
        }));
    }
    match listen {
        Some(addr) => {
            // Network mode: the TCP front end serves protocol peers;
            // stdin is only a lifetime handle — EOF begins the drain.
            let server = NetServer::bind(sched.clone(), &addr, NetServerConfig::default())?;
            eprintln!(
                "listening on {} ({workers} workers, queue capacity {queue}); \
                 close stdin (Ctrl-D) for a graceful drain",
                server.local_addr()
            );
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                if line.is_err() {
                    break;
                }
            }
            eprintln!("stdin closed: refusing new connections, draining in-flight jobs...");
            let stats = server.shutdown();
            eprintln!(
                "served {} connections: {} submitted, {} accepted, {} rejected, \
                 {} completed, {} events streamed, {} canceled on disconnect, \
                 {} connections refused while draining",
                stats.connections,
                stats.submitted,
                stats.accepted,
                stats.rejected,
                stats.completed,
                stats.events_sent,
                stats.canceled_on_eof,
                stats.refused_draining,
            );
        }
        None => {
            // Stdio mode: the same connection core as the network path
            // (one admission code path), with plain-line sugar — a bare
            // question per line submits it; full JSON requests work too.
            // Typed Rejected lines replace any drain-before-retry logic:
            // backpressure is the caller's to handle, same as over TCP.
            eprintln!(
                "serving on {workers} workers (queue capacity {queue}); \
                 questions on stdin, one per line; typed response lines on stdout"
            );
            let stdin = std::io::stdin();
            let stats = net::run_connection(
                &sched,
                stdin.lock(),
                std::io::stdout(),
                &ConnOptions::stdio(stream_events),
                None,
            );
            eprintln!(
                "served {}/{} submissions ({} rejected, {} events streamed)",
                stats.completed, stats.submitted, stats.rejected, stats.events_sent,
            );
        }
    }

    let metrics = sched.metrics().clone();
    stop.store(true, Ordering::Relaxed);
    for handle in side_threads {
        let _ = handle.join();
    }
    eprintln!(
        "totals: accepted {}, rejected {}, cache hits {}",
        metrics.counter(infera::serve::scheduler::metric_names::JOBS_ACCEPTED),
        metrics.counter(infera::serve::scheduler::metric_names::JOBS_REJECTED),
        metrics.counter(infera::serve::scheduler::metric_names::CACHE_HITS),
    );
    eprintln!("[stats] {}", sched.stats_line());
    let obs_dir = sched.persist_observability(&work)?;
    eprintln!(
        "observability artifacts written to {} (inspect with `infera stats --work {}`)",
        obs_dir.display(),
        work.display()
    );
    match Arc::try_unwrap(sched) {
        Ok(sched) => {
            sched.shutdown();
        }
        Err(sched) => sched.begin_shutdown(),
    }
    Ok(())
}

fn cmd_bench_load(args: &[String]) -> Result<(), CliError> {
    let smoke = has_flag(args, "--smoke");
    let out_path =
        flag_value(args, "--out").unwrap_or_else(|| "BENCH_load.json".to_string());
    let work = PathBuf::from(
        flag_value(args, "--work").unwrap_or_else(|| "target/bench-load".to_string()),
    );
    let manifest = match flag_value(args, "--ensemble") {
        Some(dir) => Manifest::load(PathBuf::from(&dir).as_path()).map_err(InferaError::from)?,
        None => {
            // The same deterministic benchmark ensemble bench-serve uses.
            let root = work.join("ens");
            let spec = EnsembleSpec {
                n_sims: 4,
                steps: EnsembleSpec::evenly_spaced_steps(8),
                sim: infera::hacc::SimConfig {
                    n_halos: 600,
                    particles_per_step: 3_000,
                    ..Default::default()
                },
                seed: 2025,
                particle_block_rows: 4_096,
            };
            match Manifest::load(&root) {
                Ok(m) if m.seed == spec.seed && m.n_sims as usize == spec.n_sims => m,
                _ => {
                    std::fs::remove_dir_all(&root).ok();
                    infera::hacc::generate(&spec, &root).map_err(InferaError::from)?
                }
            }
        }
    };
    let mut opts = if smoke { LoadOpts::smoke() } else { LoadOpts::default() };
    opts.seed = flag_num(args, "--seed", opts.seed)?;
    opts.sleep_scale = flag_num(args, "--sleep-scale", opts.sleep_scale)?;
    eprintln!(
        "bench-load: multipliers {:?} over {} workers / queue {}, {} arrivals per level ...",
        opts.multipliers, opts.workers, opts.queue_capacity, opts.jobs_per_level,
    );
    let report = net::run_load_bench(&manifest, &work.join("runs"), &opts)?;
    out!("{}", report.to_text());
    let json = serde_json::to_string_pretty(&report).map_err(InferaError::from)?;
    std::fs::write(&out_path, json).map_err(InferaError::from)?;
    out!("wrote {out_path}");
    if !report.digests_match {
        return Err(CliError::Usage(
            "network-served digests diverged from the serial baseline".to_string(),
        ));
    }
    if report.shutdown.lost > 0 {
        return Err(CliError::Usage(format!(
            "graceful drain lost {} accepted job(s)",
            report.shutdown.lost
        )));
    }
    if !report.shutdown.new_conn_rejected {
        return Err(CliError::Usage(
            "draining server did not refuse the new connection with a typed goodbye".to_string(),
        ));
    }
    Ok(())
}

fn cmd_bench_serve(args: &[String]) -> Result<(), CliError> {
    let smoke = has_flag(args, "--smoke");
    let out_path = flag_value(args, "--out")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let work = PathBuf::from(
        flag_value(args, "--work").unwrap_or_else(|| "target/bench-serve".to_string()),
    );
    let manifest = match flag_value(args, "--ensemble") {
        Some(dir) => Manifest::load(PathBuf::from(&dir).as_path()).map_err(InferaError::from)?,
        None => {
            // A deterministic benchmark ensemble, reused across runs.
            let root = work.join("ens");
            let spec = EnsembleSpec {
                n_sims: 4,
                steps: EnsembleSpec::evenly_spaced_steps(8),
                sim: infera::hacc::SimConfig {
                    n_halos: 600,
                    particles_per_step: 3_000,
                    ..Default::default()
                },
                seed: 2025,
                particle_block_rows: 4_096,
            };
            match Manifest::load(&root) {
                Ok(m) if m.seed == spec.seed && m.n_sims as usize == spec.n_sims => m,
                _ => {
                    std::fs::remove_dir_all(&root).ok();
                    infera::hacc::generate(&spec, &root).map_err(InferaError::from)?
                }
            }
        }
    };
    let mut opts = if smoke { BenchOpts::smoke() } else { BenchOpts::default() };
    opts.seed = flag_num(args, "--seed", opts.seed)?;
    opts.sleep_scale = flag_num(args, "--sleep-scale", opts.sleep_scale)?;
    // The bench installs/clears the plan itself (serial baseline stays
    // clean), so the spec is passed through rather than installed here.
    opts.faults = flag_value(args, "--faults")
        .or_else(|| std::env::var("INFERA_FAULTS").ok().filter(|s| !s.is_empty()));
    if let Some(spec) = &opts.faults {
        infera::faults::FaultPlan::parse(spec)
            .map_err(|e| CliError::Usage(format!("bad fault spec '{spec}': {e}")))?;
        eprintln!("bench-serve: fault plan '{spec}' active after the serial baseline");
    }
    eprintln!(
        "bench-serve: {} questions x workers {:?}, sleep_scale {} ...",
        if opts.max_questions == 0 { 20 } else { opts.max_questions },
        opts.worker_counts,
        opts.sleep_scale
    );
    let report = infera::serve::run_bench(&manifest, &work.join("runs"), &opts)?;
    out!("{}", report.to_text());
    let json = serde_json::to_string_pretty(&report).map_err(InferaError::from)?;
    std::fs::write(&out_path, json).map_err(InferaError::from)?;
    out!("wrote {out_path}");
    if !report.digests_match {
        return Err(CliError::Usage(format!(
            "concurrent runs diverged from the serial baseline on questions {:?}",
            report.divergent_questions
        )));
    }
    Ok(())
}

fn cmd_sql(args: &[String]) -> Result<(), CliError> {
    let dir = flag_value(args, "--db").ok_or("sql requires --db <dir>")?;
    let stmt = free_text(args)?.ok_or("sql requires a statement")?;
    // A sharded layout marker switches the statement onto the
    // scatter-gather engine; EXPLAIN then renders the shard split.
    let db = infera::shard::SessionDb::open_auto(PathBuf::from(&dir).as_path())
        .map_err(InferaError::from)?;
    if has_flag(args, "--explain") {
        out!("{}", db.explain(&stmt).map_err(InferaError::from)?.trim_end());
        return Ok(());
    }
    let outcome = db.execute_sql(&stmt).map_err(InferaError::from)?;
    if outcome.frame.n_cols() > 0 {
        out!("{}", outcome.frame.to_display(40));
    }
    out!(
        "{} rows ({} scanned, {} pruned; {}/{} chunks skipped)",
        outcome.frame.n_rows(),
        outcome.stats.rows_scanned,
        outcome.stats.rows_pruned,
        outcome.stats.chunks_skipped,
        outcome.stats.chunks_total
    );
    Ok(())
}

fn cmd_questions(args: &[String]) -> Result<(), CliError> {
    // --bare prints only the question text, one per line — the input
    // format `infera serve` reads on stdin.
    let bare = has_flag(args, "--bare");
    for q in infera::core::question_set() {
        if bare {
            out!("{}", q.text);
            continue;
        }
        out!(
            "Q{:<3} analysis={:<6} semantic={:<6} {:<22} {}",
            q.id,
            q.analysis.label(),
            q.semantic.label(),
            q.scope.label(),
            q.text
        );
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), CliError> {
    let run = flag_value(args, "--run").ok_or("audit requires --run <dir>")?;
    let prov_dir = PathBuf::from(&run).join("provenance");
    if !prov_dir.join("events.jsonl").is_file() {
        return Err(CliError::Usage(format!(
            "no provenance trail at {} (is --run a finished run directory?)",
            prov_dir.display()
        )));
    }
    let store = infera::provenance::ProvenanceStore::create(&prov_dir)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    out!("{}", store.audit_report());
    let checkpoints = infera::provenance::list_checkpoints(&store)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for c in checkpoints {
        out!(
            "checkpoint {} '{}' (parent: {:?}, {} frames)",
            c.id,
            c.label,
            c.parent,
            c.frames.len()
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let work = flag_value(args, "--work").ok_or("stats requires --work <dir>")?;
    let arts = infera::serve::load_observability(PathBuf::from(&work).as_path())?;
    if has_flag(args, "--prometheus") {
        out!("{}", arts.prometheus.trim_end());
        return Ok(());
    }
    if has_flag(args, "--json") {
        let json = serde_json::to_string_pretty(&arts.global).map_err(InferaError::from)?;
        out!("{json}");
        return Ok(());
    }
    if has_flag(args, "--flight") {
        let f = &arts.flight;
        out!(
            "flight recorder: {} slowest (cap {}), {} failures (cap {}), {} offered, {} evicted\n",
            f.slowest.len(),
            f.slow_capacity,
            f.failures.len(),
            f.failure_capacity,
            f.recorded,
            f.dropped
        );
        for entry in f.entries() {
            out!(
                "== job {} [{}] salt={} queue={} ms run={} ms attempts={}{}\n   {}",
                entry.job_id,
                entry.outcome.label(),
                entry.salt,
                entry.queue_ms,
                entry.run_ms,
                entry.attempts,
                entry
                    .error
                    .as_deref()
                    .map(|e| format!(" error={e}"))
                    .unwrap_or_default(),
                entry.question
            );
            let trace = infera::obs::render_trace(&entry.trace);
            if trace.trim().is_empty() {
                out!("   (no spans recorded)\n");
            } else {
                out!("{trace}");
            }
        }
        return Ok(());
    }
    // Default: human summary of the global snapshot + flight headline.
    let snap = &arts.global;
    out!(
        "serve session: {} runs merged, up {:.1}s",
        snap.runs_merged,
        snap.uptime_ms as f64 / 1000.0
    );
    if !snap.metrics.counters.is_empty() {
        out!("\ncounters:");
        for (name, value) in &snap.metrics.counters {
            out!("  {name:<32} {value}");
        }
    }
    if !snap.metrics.gauges.is_empty() {
        out!("\ngauges:");
        for (name, value) in &snap.metrics.gauges {
            out!("  {name:<32} {value}");
        }
    }
    if !snap.metrics.histograms.is_empty() {
        out!("\nhistograms (count / mean / p50 / p90 / p99 / max):");
        for (name, h) in &snap.metrics.histograms {
            out!(
                "  {name:<32} {} / {:.1} / {:.1} / {:.1} / {:.1} / {:.1}",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            );
        }
    }
    let c = |name: &str| snap.metrics.counters.get(name).copied().unwrap_or(0);
    {
        use infera::obs::metric_names as m;
        out!(
            "\nresilience: {} faults injected / {} recovered, {} retries ({} exhausted), \
             breaker {} opened / {} rejected, workers {} lost / {} panics, {} chunks quarantined",
            c(m::FAULT_INJECTED),
            c(m::FAULT_RECOVERED),
            c(m::RETRY_ATTEMPTS),
            c(m::RETRY_EXHAUSTED),
            c(m::BREAKER_OPENED),
            c(m::BREAKER_REJECTED),
            c(m::SERVE_WORKERS_LOST),
            c(m::SERVE_WORKER_PANICS),
            c(m::STORAGE_CHUNKS_QUARANTINED),
        );
    }
    let f = &arts.flight;
    out!(
        "\nflight recorder: {} slowest, {} failures retained ({} offered, {} evicted) — `--flight` for traces",
        f.slowest.len(),
        f.failures.len(),
        f.recorded,
        f.dropped
    );
    Ok(())
}
