//! The InferA command-line interface.
//!
//! ```text
//! infera generate --out ens --sims 4 --steps 16 --halos 2000 --particles 20000
//! infera plan     --ensemble ens "top 20 largest halos at timestep 498 in simulation 0"
//! infera ask      --ensemble ens --work work [--perfect] [--feedback] "<question>"
//! infera questions
//! infera audit    --run work/run_0001
//! ```

use infera::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Print to stdout, exiting quietly when the reader hangs up (`infera
/// questions | head` must not panic on the broken pipe).
macro_rules! out {
    ($($arg:tt)*) => {{
        let mut stdout = std::io::stdout().lock();
        if writeln!(stdout, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "plan" => cmd_plan(&args[1..]),
        "ask" => cmd_ask(&args[1..]),
        "questions" => cmd_questions(),
        "audit" => cmd_audit(&args[1..]),
        "--help" | "-h" | "help" => {
            out!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
InferA — a smart assistant for cosmological ensemble data (Rust reproduction)

USAGE:
  infera generate --out <dir> [--sims N] [--steps N] [--halos N] [--particles N] [--seed N]
      Generate a synthetic HACC ensemble.
  infera plan --ensemble <dir> [--save <file>] \"<question>\"
      Preview the analysis plan for a question (planning stage only);
      --save writes it as editable JSON.
  infera ask --ensemble <dir> [--work <dir>] [--seed N] [--perfect] [--feedback]
             [--plan <file>] [--breakdown] \"<question>\"
      Run the full two-stage workflow. --perfect disables model error
      injection; --feedback simulates a human in the loop; --plan executes
      a user-edited plan saved by `plan --save`; --breakdown prints the
      per-stage cost profile derived from the run trace.
  infera questions
      List the 20-question evaluation set with difficulty labels.
  infera audit --run <dir>
      Print the provenance audit trail of a finished run directory.";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
        None => Ok(default),
    }
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Flags that take a value.
const VALUE_FLAGS: &[&str] = &[
    "--out", "--sims", "--steps", "--halos", "--particles", "--seed", "--ensemble", "--work",
    "--run", "--save", "--plan",
];
/// Boolean flags.
const BOOL_FLAGS: &[&str] = &["--perfect", "--feedback", "--breakdown"];

/// The trailing free argument (the question text). Unknown flags are an
/// error — silently treating them as value-taking would swallow the
/// question.
fn free_text(args: &[String]) -> Result<Option<String>, String> {
    let mut skip_next = false;
    let mut free = Vec::new();
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
            } else if !BOOL_FLAGS.contains(&a.as_str()) {
                return Err(format!("unknown flag '{a}'"));
            }
            continue;
        }
        free.push(a.clone());
    }
    Ok((!free.is_empty()).then(|| free.join(" ")))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("generate requires --out <dir>")?;
    let sims: usize = flag_num(args, "--sims", 4)?;
    let steps: usize = flag_num(args, "--steps", 16)?;
    let halos: usize = flag_num(args, "--halos", 2000)?;
    let particles: usize = flag_num(args, "--particles", 20_000)?;
    let seed: u64 = flag_num(args, "--seed", 42)?;
    let spec = EnsembleSpec {
        n_sims: sims,
        steps: EnsembleSpec::evenly_spaced_steps(steps),
        sim: infera::hacc::SimConfig {
            n_halos: halos,
            particles_per_step: particles,
            ..Default::default()
        },
        seed,
        particle_block_rows: 16_384,
    };
    let manifest =
        infera::hacc::generate(&spec, PathBuf::from(&out).as_path()).map_err(|e| e.to_string())?;
    out!(
        "generated {} simulations x {} snapshots under {out} ({:.1} MB)",
        manifest.n_sims,
        manifest.steps.len(),
        manifest.total_bytes() as f64 / 1e6
    );
    Ok(())
}

fn session_from(args: &[String]) -> Result<InferA, String> {
    let ens = flag_value(args, "--ensemble").ok_or("missing --ensemble <dir>")?;
    let work = flag_value(args, "--work").unwrap_or_else(|| "infera-work".into());
    let seed: u64 = flag_num(args, "--seed", 42)?;
    let mut config = SessionConfig {
        seed,
        ..SessionConfig::default()
    };
    if has_flag(args, "--perfect") {
        config.profile = BehaviorProfile::perfect();
    }
    if has_flag(args, "--feedback") {
        config.run_config.human_feedback = true;
    }
    InferA::open(
        PathBuf::from(&ens).as_path(),
        PathBuf::from(&work).as_path(),
        config,
    )
    .map_err(|e| e.to_string())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let question = free_text(args)?.ok_or("plan requires a question")?;
    let session = session_from(args)?;
    let (intent, plan) = session.plan(&question).map_err(|e| e.to_string())?;
    out!("## Extracted intent\n{intent:#?}\n");
    out!("## Proposed plan ({} analysis steps)\n{}", plan.n_analysis_steps(), plan.to_text());
    out!("rationale: {}", plan.rationale);
    if let Some(path) = flag_value(args, "--save") {
        let json = serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| e.to_string())?;
        out!("plan saved to {path} — edit it and run: infera ask --plan {path} ...");
    }
    Ok(())
}

fn cmd_ask(args: &[String]) -> Result<(), String> {
    let question = free_text(args)?.ok_or("ask requires a question")?;
    let session = session_from(args)?;
    let report = match flag_value(args, "--plan") {
        Some(path) => {
            // The user-reviewed/edited plan (from `plan --save`).
            let json = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {path}: {e}"))?;
            let plan: infera::agents::Plan =
                serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
            session
                .ask_with_plan(&question, plan)
                .map_err(|e| e.to_string())?
        }
        None => session.ask(&question).map_err(|e| e.to_string())?,
    };
    out!("{}", report.summary);
    if let Some(result) = &report.result {
        out!("## Result frame\n{}", result.to_display(12));
    }
    out!(
        "completed={} redos={} tokens={} storage={:.2} MB ({:.2} MB logical, {:.2}x compression) time={:.1}s (+{:.1}s simulated LLM latency)",
        report.completed,
        report.redos,
        report.tokens,
        report.storage_bytes as f64 / 1e6,
        report.storage_logical_bytes as f64 / 1e6,
        report.storage_logical_bytes as f64 / report.storage_bytes.max(1) as f64,
        report.wall_ms as f64 / 1000.0,
        report.llm_latency_ms as f64 / 1000.0
    );
    if has_flag(args, "--breakdown") {
        out!("\nper-stage cost breakdown:\n{}", report.breakdown_text());
        let kernels = report.kernel_breakdown_text();
        if !kernels.is_empty() {
            out!("execution kernels:\n{kernels}");
        }
        out!(
            "storage: {} B on disk, {} B logical ({:.2}x compression)",
            report.storage_bytes,
            report.storage_logical_bytes,
            report.storage_logical_bytes as f64 / report.storage_bytes.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_questions() -> Result<(), String> {
    for q in infera::core::question_set() {
        out!(
            "Q{:<3} analysis={:<6} semantic={:<6} {:<22} {}",
            q.id,
            q.analysis.label(),
            q.semantic.label(),
            q.scope.label(),
            q.text
        );
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let run = flag_value(args, "--run").ok_or("audit requires --run <dir>")?;
    let prov_dir = PathBuf::from(&run).join("provenance");
    if !prov_dir.join("events.jsonl").is_file() {
        return Err(format!(
            "no provenance trail at {} (is --run a finished run directory?)",
            prov_dir.display()
        ));
    }
    let store = infera::provenance::ProvenanceStore::create(&prov_dir)
        .map_err(|e| e.to_string())?;
    out!("{}", store.audit_report());
    let checkpoints =
        infera::provenance::list_checkpoints(&store).map_err(|e| e.to_string())?;
    for c in checkpoints {
        out!(
            "checkpoint {} '{}' (parent: {:?}, {} frames)",
            c.id,
            c.label,
            c.parent,
            c.frames.len()
        );
    }
    Ok(())
}
