//! # InferA (Rust reproduction)
//!
//! A multi-agent smart assistant for cosmological ensemble data —
//! a from-scratch Rust reproduction of "InferA: A Smart Assistant for
//! Cosmological Ensemble Data" (SC Workshops '25), including every
//! substrate the paper depends on. This facade crate re-exports the
//! workspace members; see the README for the architecture tour.
//!
//! ```no_run
//! use infera::prelude::*;
//!
//! let manifest = infera::hacc::generate(
//!     &EnsembleSpec::tiny(42),
//!     std::path::Path::new("/tmp/infera-ens"),
//! ).unwrap();
//! let session = InferA::from_manifest(manifest)
//!     .work_dir("/tmp/infera-work")
//!     .build()
//!     .unwrap();
//! let report = session
//!     .ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
//!     .unwrap();
//! println!("{}", report.summary);
//! ```

pub use infera_agents as agents;
pub use infera_columnar as columnar;
pub use infera_faults as faults;
pub use infera_core as core;
pub use infera_frame as frame;
pub use infera_hacc as hacc;
pub use infera_llm as llm;
pub use infera_obs as obs;
pub use infera_provenance as provenance;
pub use infera_rag as rag;
pub use infera_sandbox as sandbox;
pub use infera_shard as shard;
pub use infera_serve as serve;
pub use infera_viz as viz;

/// Common imports for downstream users.
pub mod prelude {
    pub use infera_agents::{CancelToken, RunConfig, RunReport};
    pub use infera_core::{
        AskOptions, ErrorKind, EvalConfig, InferA, InferaError, InferaResult, SessionBuilder,
        SessionConfig,
    };
    pub use infera_hacc::{EnsembleSpec, Manifest};
    pub use infera_llm::{BehaviorProfile, SemanticLevel};
}
